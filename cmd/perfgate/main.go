// Command perfgate measures the simulator's hot-path performance and
// maintains BENCH_sim.json, the repository's machine-readable perf ledger.
// It records two kinds of numbers:
//
//   - the full evaluate sweep (Figures 10/11: 10 benchmarks x 4 configs)
//     as wall-clock seconds and cells/sec, at sweep parallelism 1 and 8;
//   - the per-instruction simulation path (the golden-suite benchmarks under
//     the baseline config) as ns and heap allocations per issued warp
//     instruction.
//
// Modes:
//
//	perfgate -baseline     # pin the pre-optimization numbers (run once)
//	perfgate               # refresh the "current" section after a change
//	perfgate -check        # CI perf smoke: re-measure the per-instruction
//	                       # path only and fail on a >2x allocs/op regression
//	                       # or a >3x ns/inst blowup against the committed
//	                       # "current" numbers
//
// Wall-clock numbers are machine-dependent; the committed file records the
// trajectory on one reference machine. The CI gate keys primarily off
// allocs/op, which is deterministic, plus a deliberately wide (3x) ns/inst
// band that only catches structural hot-path regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"gputlb/internal/arch"
	"gputlb/internal/experiments"
	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// perInstBenchmarks is the per-instruction measurement set: one benchmark
// per workload family, matching the golden-stats suite.
var perInstBenchmarks = []string{"bfs", "pagerank", "atax", "3dconv", "nw"}

// Sweep is one evaluate-sweep measurement.
type Sweep struct {
	Seconds     float64 `json:"seconds"`
	Cells       int     `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// PerInst is the per-instruction hot-path measurement.
type PerInst struct {
	Insts         int64   `json:"insts"`
	NsPerInst     float64 `json:"ns_per_inst"`
	AllocsPerInst float64 `json:"allocs_per_inst"`
	BytesPerInst  float64 `json:"bytes_per_inst"`
}

// PerCellParallel is the sharded intra-cell engine's measurement: the
// phase breakdown of one representative sharded+sliced run (bfs, baseline
// config, golden scale, the default 4 address slices) plus a serial-engine
// run of the same cell as the speedup baseline.
//
// Two projections are recorded. ParallelFrac and Projected8Core come from
// the deterministic event counts — identical on every machine, which is
// what lets a 1-core CI box gate the epoch-barrier work split. The
// parallel section is the shard-local events plus the barrier work the
// address-sliced barrier runs concurrently (the K per-slice passes and the
// per-shard SM passes); the serial section is the residual monolithic
// barrier ops, the cross-slice serial tail and the global events.
// Projected8Core applies Amdahl per phase: shard-local and SM-pass work
// scale with the core count, slice passes with min(K, cores).
// TimeProjected8Core is the wall-clock analogue against the measured
// serial engine — machine-dependent, recorded on the reference machine
// for the ledger.
//
// Before address slicing the projections sat near 2.1-2.7x: the monolithic
// barrier replayed every shared-memory-system transaction in one serial
// merge. Slicing the L2 TLB, L2 cache, walker pools and DRAM channels into
// K independent address slices turns that replay into K concurrent
// passes, leaving only TB dispatch, controller ticks and global events
// serial.
type PerCellParallel struct {
	LocalEvents  int64 `json:"local_events"`
	BarrierOps   int64 `json:"barrier_ops"`
	GlobalEvents int64 `json:"global_events"`
	Epochs       int64 `json:"epochs"`
	// L2Slices is the slice count K of the measured run; SlicedOps counts
	// the barrier ops advanced inside the K concurrent per-slice passes
	// (per slice in SliceOps), SMPassOps the ops applied by the concurrent
	// per-shard SM passes, and SerialOps the cross-slice serial tail.
	L2Slices           int     `json:"l2_slices"`
	SlicedOps          int64   `json:"sliced_ops"`
	SMPassOps          int64   `json:"sm_pass_ops"`
	SerialOps          int64   `json:"serial_ops"`
	SliceOps           []int64 `json:"slice_ops,omitempty"`
	ParallelFrac       float64 `json:"parallel_fraction"`
	Projected8Core     float64 `json:"projected_speedup_8core"`
	LegacySeconds      float64 `json:"legacy_seconds"`
	Phase1Seconds      float64 `json:"phase1_seconds"`
	BarrierSeconds     float64 `json:"barrier_seconds"`
	SlicePassSeconds   float64 `json:"slice_pass_seconds"`
	SMPassSeconds      float64 `json:"sm_pass_seconds"`
	TimeProjected8Core float64 `json:"time_projected_speedup_8core"`
}

// Measurement is one full perfgate run.
type Measurement struct {
	Recorded        string           `json:"recorded"`
	GoMaxProcs      int              `json:"gomaxprocs"`
	EvalParallel1   Sweep            `json:"eval_sweep_parallel1"`
	EvalParallel8   Sweep            `json:"eval_sweep_parallel8"`
	PerInst         PerInst          `json:"per_inst"`
	PerCellParallel *PerCellParallel `json:"per_cell_parallel,omitempty"`
}

// File is the BENCH_sim.json layout: the pinned pre-optimization baseline
// and the latest measurement, so the speedup is auditable from one file.
type File struct {
	Schema   int          `json:"schema"`
	Note     string       `json:"note"`
	Baseline *Measurement `json:"baseline,omitempty"`
	Current  *Measurement `json:"current,omitempty"`
}

const fileNote = "simulator perf ledger: refresh with `make bench-json`; " +
	"`perfgate -check` gates CI on allocs/op"

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfgate: ")

	var (
		out       = flag.String("o", "BENCH_sim.json", "perf ledger file")
		baseline  = flag.Bool("baseline", false, "record this run as the pinned baseline")
		check     = flag.Bool("check", false, "re-measure allocs/op only and fail on >2x regression vs the committed current numbers")
		skipSweep = flag.Bool("skip-sweep", false, "skip the wall-clock sweep (per-instruction numbers only)")
		label     = flag.String("label", time.Now().UTC().Format("2006-01-02"), "label stored in the measurement's recorded field")
	)
	flag.Parse()

	if *check {
		if err := runCheck(*out); err != nil {
			log.Fatal(err)
		}
		return
	}

	f, err := readFile(*out)
	if err != nil {
		log.Fatal(err)
	}
	m := measure(*label, *skipSweep)
	if *baseline {
		f.Baseline = &m
	} else {
		f.Current = &m
	}
	if err := writeFile(*out, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-inst: %.1f ns/inst, %.4f allocs/inst, %.1f B/inst over %d insts\n",
		m.PerInst.NsPerInst, m.PerInst.AllocsPerInst, m.PerInst.BytesPerInst, m.PerInst.Insts)
	if !*skipSweep {
		fmt.Printf("eval sweep: %.2fs at parallelism 1 (%.2f cells/sec), %.2fs at parallelism 8\n",
			m.EvalParallel1.Seconds, m.EvalParallel1.CellsPerSec, m.EvalParallel8.Seconds)
	}
	if f.Baseline != nil && f.Current != nil && f.Baseline.EvalParallel1.Seconds > 0 && f.Current.EvalParallel1.Seconds > 0 {
		fmt.Printf("speedup vs baseline: %.2fx wall-clock (parallelism 1), %.1fx allocs/inst\n",
			f.Baseline.EvalParallel1.Seconds/f.Current.EvalParallel1.Seconds,
			ratio(f.Baseline.PerInst.AllocsPerInst, f.Current.PerInst.AllocsPerInst))
	}
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// runCheck is the CI perf smoke: a quick per-instruction re-measurement
// gated against the committed current allocs/op. Wall clocks are skipped
// (machine-dependent); allocation counts are deterministic.
func runCheck(path string) error {
	f, err := readFile(path)
	if err != nil {
		return err
	}
	if f.Current == nil {
		return fmt.Errorf("%s has no current measurement to gate against (run `make bench-json`)", path)
	}
	committed := f.Current.PerInst.AllocsPerInst
	got := measurePerInst()
	// 2x the committed value, with a small absolute floor so a near-zero
	// committed value does not turn measurement noise into a CI failure.
	limit := 2*committed + 0.25
	fmt.Printf("allocs/inst: measured %.4f, committed %.4f, limit %.4f\n",
		got.AllocsPerInst, committed, limit)
	if got.AllocsPerInst > limit {
		return fmt.Errorf("allocs/op regression: %.4f allocs/inst exceeds %.4f (2x committed %.4f); "+
			"fix the allocation or refresh BENCH_sim.json with `make bench-json` if intentional",
			got.AllocsPerInst, limit, committed)
	}
	// Wall-clock sanity gate: the controller-off per-instruction cost must
	// stay within a wide noise band of the committed reference. 3x absorbs
	// slow CI machines while still catching structural regressions — e.g.
	// churn or controller bookkeeping leaking into the hot path of runs
	// that never enable them.
	if committedNs := f.Current.PerInst.NsPerInst; committedNs > 0 {
		nsLimit := 3 * committedNs
		fmt.Printf("ns/inst: measured %.1f, committed %.1f, limit %.1f\n",
			got.NsPerInst, committedNs, nsLimit)
		if got.NsPerInst > nsLimit {
			return fmt.Errorf("per-inst time regression: %.1f ns/inst exceeds %.1f (3x committed %.1f); "+
				"fix the hot path or refresh BENCH_sim.json with `make bench-json` if intentional",
				got.NsPerInst, nsLimit, committedNs)
		}
	}
	pcp := measurePerCellParallel()
	fmt.Printf("cell-parallel: %.4f parallel fraction (%d local events, %d sliced ops over %d slices, "+
		"%d SM-pass ops, %d serial ops, %d barrier ops, %d global), "+
		"%.2fx count-projected / %.2fx time-projected on 8 cores\n",
		pcp.ParallelFrac, pcp.LocalEvents, pcp.SlicedOps, pcp.L2Slices,
		pcp.SMPassOps, pcp.SerialOps, pcp.BarrierOps, pcp.GlobalEvents,
		pcp.Projected8Core, pcp.TimeProjected8Core)
	if pcp.ParallelFrac < minParallelFrac {
		return fmt.Errorf("cell-parallel regression: parallel fraction %.4f below the %.2f floor — "+
			"too much work moved from the shards to the serial barrier", pcp.ParallelFrac, minParallelFrac)
	}
	if pcp.Projected8Core < minProjected8Core {
		return fmt.Errorf("cell-parallel regression: projected 8-core speedup %.2fx below the %.1fx floor "+
			"(parallel fraction %.4f) — too much work moved from the shards to the serial barrier",
			pcp.Projected8Core, minProjected8Core, pcp.ParallelFrac)
	}
	fmt.Println("perf gate OK")
	return nil
}

// minProjected8Core and minParallelFrac are the CI floors for the sharded
// engine's deterministic Amdahl projection and work split, measured with
// the address-sliced barrier at its default 4 slices. The sliced barrier
// moves the L2 TLB/cache/walker/DRAM replay from one serial merge into K
// concurrent per-slice passes, which lifts the representative bfs cell
// well past the old monolithic ceiling (0.607 fraction, 2.13x projection);
// the floors are pinned under the measured sliced values so any structural
// regression that shifts work back into the serial section fails CI.
const (
	minProjected8Core = 3.0
	minParallelFrac   = 0.70
)

func measure(label string, skipSweep bool) Measurement {
	pcp := measurePerCellParallel()
	m := Measurement{
		Recorded:        label,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		PerInst:         measurePerInst(),
		PerCellParallel: &pcp,
	}
	if !skipSweep {
		m.EvalParallel1 = measureEval(1)
		m.EvalParallel8 = measureEval(8)
	}
	return m
}

// measurePerCellParallel runs the representative cell on both engines and
// derives the projections described on PerCellParallel. The sharded run
// uses two workers and the default 4 address slices: the event counts are
// identical at every worker count, and two workers keep the phase-1 wall
// clock close to the actual shard work on small machines (more workers
// only add scheduler ping-pong there).
func measurePerCellParallel() PerCellParallel {
	spec, ok := workloads.ByName("bfs")
	if !ok {
		log.Fatal("unknown benchmark bfs")
	}
	k, as := workloads.Cached(spec, workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2})

	serial, err := sim.New(arch.Default(), k, as)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	serial.Run()
	legacySecs := time.Since(start).Seconds()

	s, err := sim.New(arch.Default(), k, as)
	if err != nil {
		log.Fatal(err)
	}
	s.SetCellParallel(2)
	s.SetL2Slices(4)
	s.Run()
	p := s.Profile()
	slices := s.L2Slices()

	// Deterministic work split. Parallel: shard-local events plus the
	// barrier ops the sliced barrier advances concurrently (slice passes
	// scale with min(K, cores), SM passes with the shard count). Serial:
	// residual monolithic barrier ops, the cross-slice tail and globals.
	parallelOps := p.LocalEvents + p.SlicedOps + p.SMPassOps
	serialOps := p.BarrierOps + p.SerialOps + p.GlobalEvents
	total := parallelOps + serialOps
	var frac, proj float64
	if total > 0 {
		frac = float64(parallelOps) / float64(total)
		sliceWays := float64(min(slices, 8))
		denom := float64(serialOps)/float64(total) +
			float64(p.LocalEvents)/float64(total)/8 +
			float64(p.SlicedOps)/float64(total)/sliceWays +
			float64(p.SMPassOps)/float64(total)/8
		if denom > 0 {
			proj = 1 / denom
		}
	}

	// Wall-clock analogue: phase 1 and the SM passes scale with the core
	// count, the slice passes with min(K, cores); the rest of the barrier
	// stays serial.
	var timeProj float64
	serialBarrier := p.BarrierSeconds - p.SlicePassSeconds - p.SMPassSeconds
	if serialBarrier < 0 {
		serialBarrier = 0
	}
	if denom := p.Phase1Seconds/8 + p.SlicePassSeconds/float64(min(slices, 8)) +
		p.SMPassSeconds/8 + serialBarrier; denom > 0 {
		timeProj = legacySecs / denom
	}
	return PerCellParallel{
		LocalEvents:        p.LocalEvents,
		BarrierOps:         p.BarrierOps,
		GlobalEvents:       p.GlobalEvents,
		Epochs:             p.Epochs,
		L2Slices:           slices,
		SlicedOps:          p.SlicedOps,
		SMPassOps:          p.SMPassOps,
		SerialOps:          p.SerialOps,
		SliceOps:           p.SliceOps,
		ParallelFrac:       frac,
		Projected8Core:     proj,
		LegacySeconds:      legacySecs,
		Phase1Seconds:      p.Phase1Seconds,
		BarrierSeconds:     p.BarrierSeconds,
		SlicePassSeconds:   p.SlicePassSeconds,
		SMPassSeconds:      p.SMPassSeconds,
		TimeProjected8Core: timeProj,
	}
}

// measureEval times the full Figure 10/11 evaluate sweep at the given
// parallelism. The trace cache is cleared first so every measurement pays
// the same first-build cost the real CLI run pays.
func measureEval(parallelism int) Sweep {
	workloads.ClearTraceCache()
	opt := experiments.DefaultOptions()
	opt.Parallelism = parallelism
	start := time.Now()
	rows, err := experiments.Eval(opt)
	if err != nil {
		log.Fatal(err)
	}
	secs := time.Since(start).Seconds()
	cells := 4 * len(rows)
	return Sweep{Seconds: secs, Cells: cells, CellsPerSec: float64(cells) / secs}
}

// measurePerInst runs the golden-suite benchmarks under the baseline config
// and reports time and heap allocations per issued warp instruction. Kernel
// construction happens outside the measured window: this is the simulate
// hot path, not the workload generators.
func measurePerInst() PerInst {
	type cell struct {
		s *sim.Simulator
	}
	params := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2}
	cfg := arch.Default()
	var cells []cell
	for _, name := range perInstBenchmarks {
		spec, ok := workloads.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %q", name)
		}
		k, as := workloads.Cached(spec, params)
		s, err := sim.New(cfg, k, as)
		if err != nil {
			log.Fatal(err)
		}
		cells = append(cells, cell{s})
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var insts int64
	for _, c := range cells {
		r := c.s.Run()
		insts += r.InstsIssued
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	mallocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	return PerInst{
		Insts:         insts,
		NsPerInst:     float64(elapsed.Nanoseconds()) / float64(insts),
		AllocsPerInst: float64(mallocs) / float64(insts),
		BytesPerInst:  float64(bytes) / float64(insts),
	}
}

func readFile(path string) (File, error) {
	f := File{Schema: 1, Note: fileNote}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("parsing %s: %w", path, err)
	}
	f.Schema = 1
	f.Note = fileNote
	return f, nil
}

func writeFile(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
