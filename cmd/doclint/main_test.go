package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintPublicPackageFlagsUndocumented(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "lib.go"), `// Package lib is documented.
package lib

// Documented has a comment.
func Documented() {}

func Undocumented() {}

type Bare struct{}

// Grouped constants share the declaration comment.
const (
	A = 1
	B = 2
)

var Naked = 3
`)
	var problems []string
	lintPublicPackage(dir, func(f string, a ...any) {
		problems = append(problems, applyf(f, a))
	})
	wantSubstrings := []string{"function Undocumented", "type Bare", "var Naked"}
	if len(problems) != len(wantSubstrings) {
		t.Fatalf("got %d problems %v, want %d", len(problems), problems, len(wantSubstrings))
	}
	for _, want := range wantSubstrings {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no problem mentioning %q in %v", want, problems)
		}
	}
}

func TestLintInternalPackages(t *testing.T) {
	dir := t.TempDir()
	// good: has doc.go with a proper package comment
	write(t, filepath.Join(dir, "good", "doc.go"), "// Package good does things.\npackage good\n")
	// bad1: no doc.go at all
	write(t, filepath.Join(dir, "bad1", "bad1.go"), "package bad1\n")
	// bad2: doc.go whose comment does not follow the Package convention
	write(t, filepath.Join(dir, "bad2", "doc.go"), "// does stuff\npackage bad2\n")
	var problems []string
	lintInternalPackages(dir, func(f string, a ...any) {
		problems = append(problems, applyf(f, a))
	})
	if len(problems) != 2 {
		t.Fatalf("got %v, want 2 problems", problems)
	}
	for _, p := range problems {
		if strings.Contains(p, "good") {
			t.Errorf("documented package flagged: %s", p)
		}
	}
}

func TestLintCommands(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "tool", "main.go"), "// Command tool runs.\npackage main\n\nfunc main() {}\n")
	write(t, filepath.Join(dir, "naked", "main.go"), "package main\n\nfunc main() {}\n")
	var problems []string
	lintCommands(dir, func(f string, a ...any) {
		problems = append(problems, applyf(f, a))
	})
	if len(problems) != 1 || !strings.Contains(problems[0], "naked") {
		t.Fatalf("got %v, want exactly the naked command flagged", problems)
	}
}

func TestLintRegisteredRoutes(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "OPERATIONS.md"), "## API\n\n`POST /jobs` submits a job.\n")
	write(t, filepath.Join(dir, "internal", "srv", "srv.go"), `package srv

import "net/http"

func handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(http.ResponseWriter, *http.Request) {})
	mux.HandleFunc("GET /undocumented", func(http.ResponseWriter, *http.Request) {})
	return mux
}
`)
	// Non-route HandleFunc patterns (no "METHOD /path" shape) are ignored.
	write(t, filepath.Join(dir, "cmd", "tool", "main.go"), `// Command tool runs.
package main

import "net/http"

func main() {
	http.HandleFunc("/legacy-no-method", func(http.ResponseWriter, *http.Request) {})
}
`)
	var problems []string
	lintRegisteredRoutes(dir, func(f string, a ...any) {
		problems = append(problems, applyf(f, a))
	})
	if len(problems) != 1 || !strings.Contains(problems[0], `"GET /undocumented"`) {
		t.Fatalf("got %v, want exactly the undocumented route flagged", problems)
	}
}

func TestLintRegisteredRoutesRequiresOperationsFile(t *testing.T) {
	dir := t.TempDir()
	var problems []string
	lintRegisteredRoutes(dir, func(f string, a ...any) {
		problems = append(problems, applyf(f, a))
	})
	if len(problems) != 1 || !strings.Contains(problems[0], "OPERATIONS.md") {
		t.Fatalf("got %v, want a missing-OPERATIONS.md problem", problems)
	}
}

// applyf renders a report call the way main does.
func applyf(format string, args []any) string {
	return fmt.Sprintf(format, args...)
}
