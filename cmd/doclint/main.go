// Command doclint enforces the repository's documentation conventions,
// beyond what go vet checks:
//
//   - every exported identifier in the public package (the module root)
//     carries a doc comment;
//   - every internal package has a doc.go whose package comment explains
//     the package's role;
//   - every command has a package comment describing its usage;
//   - every exported identifier in internal/fabric (the operator-facing
//     distribution layer) carries a doc comment, same bar as the public
//     package;
//   - every HTTP route registered in code via HandleFunc("METHOD /path")
//     appears verbatim in OPERATIONS.md, so the operator API reference
//     cannot silently go stale.
//
// It exits non-zero listing each violation, so `make docs-lint` (and CI)
// fail when an undocumented identifier, an uncommented package, or an
// undocumented endpoint lands.
//
//	doclint [module-root]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	lintPublicPackage(root, report)
	// The fabric package is the operator-facing distribution layer; its
	// exports are held to the public package's documentation bar.
	lintPublicPackage(filepath.Join(root, "internal", "fabric"), report)
	lintInternalPackages(filepath.Join(root, "internal"), report)
	lintCommands(filepath.Join(root, "cmd"), report)
	lintRegisteredRoutes(root, report)

	sort.Strings(problems)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// parseDir parses the non-test Go files of one directory.
func parseDir(dir string) (map[string]*ast.Package, *token.FileSet, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	return pkgs, fset, err
}

// lintPublicPackage requires a doc comment on every exported top-level
// identifier of the package in dir. A comment on a grouped declaration
// (`// Architectural enums.` above a const block) covers the group.
func lintPublicPackage(dir string, report func(string, ...any)) {
	pkgs, fset, err := parseDir(dir)
	if err != nil {
		report("%s: %v", dir, err)
		return
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report("%s: exported %s %s is undocumented",
							fset.Position(d.Pos()), declKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(fset, d, report)
				}
			}
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// lintGenDecl checks a const/var/type declaration. The declaration's own
// doc comment covers every spec inside it; otherwise each exported spec
// needs its own.
func lintGenDecl(fset *token.FileSet, d *ast.GenDecl, report func(string, ...any)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report("%s: exported type %s is undocumented", fset.Position(s.Pos()), s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report("%s: exported %s %s is undocumented",
						fset.Position(s.Pos()), d.Tok, name.Name)
				}
			}
		}
	}
}

// lintInternalPackages requires each package under dir to have a doc.go
// carrying the package comment.
func lintInternalPackages(dir string, report func(string, ...any)) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		report("%s: %v", dir, err)
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkgDir := filepath.Join(dir, e.Name())
		docPath := filepath.Join(pkgDir, "doc.go")
		if _, err := os.Stat(docPath); err != nil {
			report("%s: package has no doc.go", pkgDir)
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, docPath, nil, parser.ParseComments)
		if err != nil {
			report("%s: %v", docPath, err)
			continue
		}
		if f.Doc == nil || len(strings.TrimSpace(f.Doc.Text())) == 0 {
			report("%s: doc.go has no package comment", docPath)
		} else if !strings.HasPrefix(f.Doc.Text(), "Package "+f.Name.Name) {
			report("%s: package comment must start with %q", docPath, "Package "+f.Name.Name)
		}
	}
}

// lintRegisteredRoutes cross-checks the served HTTP surface against the
// operator reference: every route registered anywhere under internal/ or
// cmd/ as a HandleFunc("METHOD /path") literal must appear verbatim in
// OPERATIONS.md.
func lintRegisteredRoutes(root string, report func(string, ...any)) {
	ops, err := os.ReadFile(filepath.Join(root, "OPERATIONS.md"))
	if err != nil {
		report("%s: OPERATIONS.md (the endpoint reference) is unreadable: %v", root, err)
		return
	}
	opsText := string(ops)
	routes := map[string]token.Position{}
	for _, sub := range []string{"internal", "cmd"} {
		filepath.WalkDir(filepath.Join(root, sub), func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil // build breakage is the compiler's problem
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "HandleFunc" {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				pattern, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.Contains(pattern, " /") {
					return true // not a "METHOD /path" route pattern
				}
				if _, seen := routes[pattern]; !seen {
					routes[pattern] = fset.Position(lit.Pos())
				}
				return true
			})
			return nil
		})
	}
	for pattern, pos := range routes {
		if !strings.Contains(opsText, pattern) {
			report("%s: route %q is served but missing from OPERATIONS.md", pos, pattern)
		}
	}
}

// lintCommands requires a package comment (on any file) for each command.
func lintCommands(dir string, report func(string, ...any)) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		report("%s: %v", dir, err)
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		cmdDir := filepath.Join(dir, e.Name())
		pkgs, _, err := parseDir(cmdDir)
		if err != nil {
			report("%s: %v", cmdDir, err)
			continue
		}
		for _, pkg := range pkgs {
			documented := false
			for _, file := range pkg.Files {
				if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
					documented = true
				}
			}
			if !documented {
				report("%s: command has no package comment", cmdDir)
			}
		}
	}
}
