// Command traceconv exports the suite's benchmarks as binary kernel traces
// and inspects trace files, so runs can be archived, diffed, or replayed
// (including traces produced by external tracers emitting the same format).
//
// Examples:
//
//	traceconv -bench atax -o atax.trace          # export a workload
//	traceconv -info atax.trace                    # summarize a trace file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gputlb"
	"gputlb/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceconv: ")

	var (
		bench   = flag.String("bench", "", "benchmark to export")
		out     = flag.String("o", "", "output trace file (with -bench)")
		info    = flag.String("info", "", "trace file to summarize")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		seed    = flag.Int64("seed", 1, "workload generation seed")
		outputs cliutil.OutputFlags
	)
	outputs.RegisterProfiles(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := outputs.Start()
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *bench != "" && *out != "":
		p := gputlb.DefaultParams()
		p.Scale = *scale
		p.Seed = *seed
		k, _, err := gputlb.Build(*bench, p)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := gputlb.WriteKernelTrace(f, k); err != nil {
			log.Fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("wrote %s: %d TBs, %d memory instructions, %d bytes\n",
			*out, len(k.TBs), k.MemInsts(), st.Size())
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		k, err := gputlb.ReadKernelTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kernel       %s\n", k.Name)
		fmt.Printf("TBs          %d (%d threads each, %d warps)\n", len(k.TBs), k.ThreadsPerTB, k.WarpsPerTB())
		fmt.Printf("mem insts    %d\n", k.MemInsts())
		fmt.Printf("phases       %d\n", len(k.PhaseStarts)+1)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}
