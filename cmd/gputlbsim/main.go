// Command gputlbsim runs one benchmark of the suite under one configuration
// of the simulated GPU and prints the translation and execution statistics.
//
// Examples:
//
//	gputlbsim -bench bfs                      # baseline (Table III)
//	gputlbsim -bench atax -policy share       # the full proposal
//	gputlbsim -bench gemm -pagesize 2m        # huge pages
//	gputlbsim -bench mvt -json                # machine-readable results
//	gputlbsim -trace atax.trace               # replay an exported trace
//	gputlbsim -printconfig                    # show Table III
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gputlb"
	"gputlb/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gputlbsim: ")

	var (
		bench       = flag.String("bench", "", "benchmark to run (one of: "+strings.Join(gputlb.WorkloadNames(), ", ")+")")
		policy      = flag.String("policy", "baseline", "configuration: baseline | sched | part | share")
		scale       = flag.Float64("scale", 1.0, "workload scale factor")
		seed        = flag.Int64("seed", 1, "workload generation seed")
		pagesize    = flag.String("pagesize", "4k", "page size: 4k | 2m")
		compress    = flag.Bool("compress", false, "enable TLB compression (PACT'20 comparator)")
		mech        = flag.String("mech", "", "translation mechanism for both TLB levels: base | subentry | deadblock | largereach (default base)")
		alloc       = flag.String("alloc", "", "UVM frame allocation: firsttouch | contig (default firsttouch; contig feeds -mech largereach)")
		l1entries   = flag.Int("l1entries", 64, "L1 TLB entries per SM")
		printconfig = flag.Bool("printconfig", false, "print the Table III configuration and exit")
		jsonOut     = flag.Bool("json", false, "emit results as JSON")
		tracePath   = flag.String("trace", "", "replay a binary kernel trace instead of building a benchmark")
		configPath  = flag.String("config", "", "load the machine configuration from a JSON file")
		cellPar     = flag.Int("cell-parallel", 1, "intra-cell engine: 1 = serial (golden-identical), N>=2 = sharded epoch-barrier engine with up to N workers (bit-identical at any N>=2)")
		l2Slices    = flag.Int("l2-slices", 4, "address slices for the sharded engine's barrier: K>1 splits L2 TLB/cache sets, walkers and DRAM channels into K slices applied concurrently (bit-identical at any worker count for fixed K); 1 = monolithic barrier; ignored when -cell-parallel <= 1")
		outputs     cliutil.OutputFlags
	)
	outputs.Register(flag.CommandLine)
	flag.Parse()

	if *printconfig {
		fmt.Print(gputlb.Table3())
		return
	}
	if *bench == "" && *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var cfg gputlb.Config
	switch *policy {
	case "baseline":
		cfg = gputlb.BaselineConfig()
	case "sched":
		cfg = gputlb.SchedConfig()
	case "part":
		cfg = gputlb.PartConfig()
	case "share":
		cfg = gputlb.ShareConfig()
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			log.Fatalf("parsing %s: %v", *configPath, err)
		}
	}
	cfg.L1TLB.Entries = *l1entries
	cfg.TLBCompression = *compress
	if *mech != "" {
		cfg.TLBMech = *mech
	}
	if *alloc != "" {
		cfg.AllocMode = *alloc
	}

	p := gputlb.DefaultParams()
	p.Scale = *scale
	p.Seed = *seed
	switch *pagesize {
	case "4k":
	case "2m":
		p.PageShift = 21
		cfg.PageSize = gputlb.PageSize2M
	default:
		log.Fatalf("unknown page size %q", *pagesize)
	}

	stopProfiles, err := outputs.Start()
	if err != nil {
		log.Fatal(err)
	}

	var k *gputlb.Kernel
	var as *gputlb.AddressSpace
	name := *bench
	if *tracePath != "" {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		var kerr error
		k, kerr = gputlb.ReadKernelTrace(f)
		f.Close()
		if kerr != nil {
			log.Fatal(kerr)
		}
		name = k.Name + " (trace)"
		as = gputlb.NewAddressSpace(p.PageShift, p.Seed)
	} else {
		var berr error
		k, as, berr = gputlb.Build(*bench, p)
		if berr != nil {
			log.Fatal(berr)
		}
	}

	s, err := gputlb.NewSimulator(cfg, k, as)
	if err != nil {
		log.Fatal(err)
	}
	tracer := outputs.NewTracer()
	if tracer != nil {
		s.SetTracer(tracer, 0)
	}
	s.SetCellParallel(*cellPar)
	s.SetL2Slices(*l2Slices)
	res := s.Run()

	// A single run exports its stats Snapshot directly rather than a
	// sweep-shaped StatsDump, so -stats-out bypasses Export here.
	if outputs.StatsOut != "" {
		if err := cliutil.ExportSnapshot(outputs.StatsOut, res.Stats); err != nil {
			log.Fatal(err)
		}
	}
	if outputs.TraceOut != "" {
		if err := cliutil.ExportTrace(outputs.TraceOut, tracer); err != nil {
			log.Fatal(err)
		}
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		out := struct {
			Benchmark string
			Policy    string
			Scale     float64
			PageSize  string
			Result    gputlb.Result
		}{name, *policy, *scale, *pagesize, res}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("benchmark        %s (policy %s, scale %.2f, %s pages)\n", name, *policy, *scale, *pagesize)
	fmt.Printf("execution        %d cycles\n", res.Cycles)
	fmt.Printf("L1 TLB hit rate  %.3f (mean across SMs; %d hits / %d accesses)\n",
		res.L1TLBHitRate, res.L1TLBHits(), res.L1TLBAccesses())
	fmt.Printf("L2 TLB           %.3f hit rate (%d accesses)\n", res.L2TLB.HitRate(), res.L2TLB.Accesses)
	fmt.Printf("page walks       %d (%d UVM first-touch faults)\n", res.Walks, res.Faults)
	fmt.Printf("L1 cache         %.3f hit rate; L2 cache %.3f\n", res.L1Cache.HitRate(), res.L2Cache.HitRate())
	fmt.Printf("instructions     %d issued, %d line requests, %d translation requests\n",
		res.InstsIssued, res.LineRequests, res.PageRequests)
	fmt.Printf("TBs per SM       %v\n", res.TBsPerSM)
	fmt.Printf("NoC stalls       %d; DRAM row hits %d / misses %d\n",
		res.NoCStalls, res.DRAMRowHits, res.DRAMRowMisses)
	fmt.Printf("translation latency histogram (cycles: count):\n")
	for b, c := range res.TranslationLatency {
		if c == 0 {
			continue
		}
		fmt.Printf("  <=2^%-2d %9d\n", b+1, c)
	}
}
