// Command evaluate regenerates the paper's evaluation: Figures 10 and 11
// (hit rates and normalized execution time under the four configurations),
// Figure 12 (combination with TLB compression), the huge-page study, the
// multi-tenant co-run interference grid, and the design-space ablations
// (sharing counter/all-to-all, TB throttling, warp-granularity reuse).
//
// Examples:
//
//	evaluate                 # figures 10-12 and the huge-page study
//	evaluate -fig 11
//	evaluate -fig multi -bench bfs,atax
//	evaluate -fig ablations
//	evaluate -daemon http://localhost:8372 -fig 11   # run on a gputlbd
//
// The -daemon URL may equally point at a fabric coordinator (gputlbd
// -coordinator): the /jobs API is identical and the distributed run's
// result artifact is byte-identical to a single daemon's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"gputlb"
	"gputlb/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaluate: ")

	var (
		fig       = flag.String("fig", "all", "what to produce: 10 | 11 | 12 | hugepage | multi | churn | mech | ablations | warp | balance | seeds | all")
		bench     = flag.String("bench", "", "comma-separated benchmark subset (default: all)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		seed      = flag.Int64("seed", 1, "workload generation seed")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation cells (results are identical at any value)")
		cellPar   = flag.Int("cell-parallel", 1, "intra-cell engine: 1 = serial (golden-identical), N>=2 = sharded epoch-barrier engine with up to N workers per cell (bit-identical at any N>=2)")
		l2Slices  = flag.Int("l2-slices", 4, "address slices for the sharded engine's barrier (bit-identical at any worker count for fixed K); ignored when -cell-parallel <= 1")
		jsonOut   = flag.Bool("json", false, "emit the row structs as JSON instead of tables")
		objective = flag.String("objective", "", "partitioning-controller objective for controller cells: ws | fairness | maxmin (default ws)")
		daemon    = flag.String("daemon", "", "submit the sweep to a gputlbd (or fabric coordinator — same API) at this URL instead of running in-process (figs 10/11/12/hugepage/multi)")
		out       cliutil.OutputFlags
	)
	out.Register(flag.CommandLine)
	flag.Parse()

	var benchmarks []string
	if *bench != "" {
		benchmarks = strings.Split(*bench, ",")
	}

	if *daemon != "" {
		if err := runViaDaemon(*daemon, *fig, benchmarks, *scale, *seed, *cellPar, *l2Slices, *objective, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	stopProfiles, err := out.Start()
	if err != nil {
		log.Fatal(err)
	}

	opt := gputlb.DefaultExperimentOptions()
	opt.Params.Scale = *scale
	opt.Params.Seed = *seed
	opt.Parallelism = *parallel
	opt.CellParallel = *cellPar
	opt.L2Slices = *l2Slices
	opt.Benchmarks = benchmarks
	opt.Objective = *objective
	opt.StatsDump = out.NewStatsDump()
	opt.Tracer = out.NewTracer()

	want := func(name string) bool { return *fig == "all" || *fig == name }
	emit := func(name, table string, rows any) {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{name: rows}); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Println(table)
	}

	if want("10") || want("11") {
		rows, err := gputlb.Eval(opt)
		if err != nil {
			log.Fatal(err)
		}
		if want("10") {
			emit("fig10", gputlb.RenderFig10(rows), rows)
		}
		if want("11") {
			emit("fig11", gputlb.RenderFig11(rows), rows)
		}
	}
	if want("12") {
		rows, err := gputlb.Fig12(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig12", gputlb.RenderFig12(rows), rows)
	}
	if want("hugepage") {
		rows, err := gputlb.HugePages(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("hugepage", gputlb.RenderHugePages(rows), rows)
	}
	if *fig == "multi" {
		// Not part of -fig all: the co-run grid is all benchmark pairs x
		// 12 configurations and dwarfs the single-kernel figures.
		rows, err := gputlb.MultiGrid(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("multi", gputlb.RenderMulti(rows), rows)
	}
	if *fig == "churn" {
		// Not part of -fig all for the same reason: all pairs x the L2 TLB
		// tenancy axis, each cell with mid-run tenant arrivals.
		rows, err := gputlb.ChurnGrid(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("churn", gputlb.RenderChurn(rows), rows)
	}
	if *fig == "mech" {
		// Not part of -fig all: the mechanism study spans benchmarks x
		// mechanisms solo plus every pair x mechanism co-run.
		rows, err := gputlb.MechEval(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("mech", gputlb.RenderMechEval(rows), rows)
		if len(benchmarks) != 1 {
			mrows, err := gputlb.MechMulti(opt)
			if err != nil {
				log.Fatal(err)
			}
			emit("mech-multi", gputlb.RenderMechMulti(mrows), mrows)
		}
	}
	if *fig == "seeds" {
		rows, err := gputlb.SeedSweep(opt, []int64{1, 2, 3})
		if err != nil {
			log.Fatal(err)
		}
		emit("seeds", gputlb.RenderSeedSweep(rows), rows)
	}
	if *fig == "ablations" {
		rows, err := gputlb.AblationSharing(opt, []int{4, 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(gputlb.RenderAblation(
			"Ablation — sharing activation: counter thresholds and all-to-all vs the 1-bit adjacent flag", rows))
		rows, err = gputlb.AblationThrottle(opt, []int{4, 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(gputlb.RenderAblation(
			"Ablation — TB throttling combined with the proposal (§IV-A extension)", rows))
		rows, err = gputlb.AblationWarpSched(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(gputlb.RenderAblation(
			"Ablation — warp schedulers under the proposal (vs GTO; 'translation-aware' is the paper's future work)", rows))
		rows, err = gputlb.AblationPWC(opt, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(gputlb.RenderAblation(
			"Ablation — 64-entry page-walk cache (vs the same config without one)", rows))
		rows, err = gputlb.AblationReplacement(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(gputlb.RenderAblation(
			"Ablation — TLB replacement policies under the proposal (vs LRU)", rows))
	}
	if *fig == "balance" {
		rows, err := gputlb.SMBalance(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(gputlb.RenderSMBalance(rows))
	}
	if *fig == "warp" {
		rows, err := gputlb.WarpReuse(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(gputlb.RenderBins(
			"Future work — warp-granularity intra-warp translation reuse", rows))
	}

	if err := out.Export(opt.StatsDump, opt.Tracer); err != nil {
		log.Fatal(err)
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}
