package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gputlb"
	"gputlb/internal/experiments"
	"gputlb/internal/jobs"
)

// runViaDaemon submits the requested figure's grid to a gputlbd and
// reconstructs the figure rows from the returned cell results. The cells
// are deterministic, so the daemon path renders exactly what an
// in-process run would.
func runViaDaemon(baseURL, fig string, benchmarks []string, scale float64, seed int64, cellParallel, l2Slices int, objective string, jsonOut bool) error {
	c := &jobs.Client{BaseURL: baseURL}
	if cellParallel < 2 {
		l2Slices = 0 // slicing is a property of the sharded barrier only
	}
	want := func(name string) bool { return fig == "all" || fig == name }
	emit := func(name, table string, rows any) error {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(map[string]any{name: rows})
		}
		fmt.Println(table)
		return nil
	}

	// submit runs one grid remotely and returns the cell results grouped
	// per benchmark (configs-per-benchmark stride, matching Normalize's
	// benchmark-major expansion).
	submit := func(name string, configs []string) ([][]jobs.CellResult, error) {
		id, err := c.Submit(jobs.JobSpec{
			Name:         name,
			Benchmarks:   benchmarks,
			Configs:      configs,
			Scale:        scale,
			Seed:         seed,
			CellParallel: cellParallel,
			L2Slices:     l2Slices,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "evaluate: submitted %s as %s; polling...\n", name, id)
		st, err := c.Wait(context.Background(), id, 0)
		if err != nil {
			return nil, err
		}
		if st.State != jobs.StateDone {
			return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		res, err := c.Result(id)
		if err != nil {
			return nil, err
		}
		stride := len(configs)
		grouped := make([][]jobs.CellResult, 0, len(res.Cells)/stride)
		for i := 0; i+stride <= len(res.Cells); i += stride {
			grouped = append(grouped, res.Cells[i:i+stride])
		}
		return grouped, nil
	}

	if fig == "multi" {
		return runMultiViaDaemon(c, benchmarks, scale, seed, cellParallel, l2Slices, emit)
	}
	if fig == "churn" {
		return runChurnViaDaemon(c, benchmarks, scale, seed, cellParallel, l2Slices, objective, emit)
	}
	if fig == "mech" {
		return runMechViaDaemon(c, benchmarks, scale, seed, cellParallel, l2Slices, emit)
	}
	supported := map[string]bool{"all": true, "10": true, "11": true, "12": true, "hugepage": true}
	if !supported[fig] {
		return fmt.Errorf("-fig %s is analysis-local; only 10, 11, 12, hugepage, multi, churn, mech (or all) run via -daemon", fig)
	}

	if want("10") || want("11") {
		grouped, err := submit("evaluate-fig10-11", []string{"baseline", "sched", "sched+part", "sched+part+share"})
		if err != nil {
			return err
		}
		rows := make([]gputlb.EvalRow, len(grouped))
		for i, g := range grouped {
			rows[i] = gputlb.EvalRow{
				Bench:       g[0].Bench,
				HitBase:     g[0].L1TLBHitRate,
				HitSched:    g[1].L1TLBHitRate,
				HitPart:     g[2].L1TLBHitRate,
				HitShare:    g[3].L1TLBHitRate,
				CyclesBase:  g[0].Cycles,
				CyclesSched: g[1].Cycles,
				CyclesPart:  g[2].Cycles,
				CyclesShare: g[3].Cycles,
			}
		}
		if want("10") {
			if err := emit("fig10", gputlb.RenderFig10(rows), rows); err != nil {
				return err
			}
		}
		if want("11") {
			if err := emit("fig11", gputlb.RenderFig11(rows), rows); err != nil {
				return err
			}
		}
	}
	if want("12") {
		grouped, err := submit("evaluate-fig12", []string{"compression", "ours+compression"})
		if err != nil {
			return err
		}
		rows := make([]gputlb.Fig12Row, len(grouped))
		for i, g := range grouped {
			rows[i] = gputlb.Fig12Row{
				Bench:           g[0].Bench,
				Speedup:         float64(g[0].Cycles) / float64(g[1].Cycles),
				HitCompress:     g[0].L1TLBHitRate,
				HitOursCompress: g[1].L1TLBHitRate,
			}
		}
		if err := emit("fig12", gputlb.RenderFig12(rows), rows); err != nil {
			return err
		}
	}
	if want("hugepage") {
		grouped, err := submit("evaluate-hugepage", []string{"baseline-4K", "baseline-2M", "ours-2M"})
		if err != nil {
			return err
		}
		rows := make([]gputlb.HugePageRow, len(grouped))
		for i, g := range grouped {
			rows[i] = gputlb.HugePageRow{
				Bench:         g[0].Bench,
				Hit4K:         g[0].L1TLBHitRate,
				Hit2M:         g[1].L1TLBHitRate,
				SpeedupOurs2M: float64(g[1].Cycles) / float64(g[2].Cycles),
			}
		}
		if err := emit("hugepage", gputlb.RenderHugePages(rows), rows); err != nil {
			return err
		}
	}
	return nil
}

// runMultiViaDaemon submits the co-run interference grid as one explicit
// cell list — a solo "baseline" cell per benchmark followed by every pair x
// multi-config cell in MultiGrid's order — and reconstructs the same
// MultiRow rows an in-process run would render. Both paths derive every
// figure number from the same integer counters, so the output is
// byte-identical.
func runMultiViaDaemon(c *jobs.Client, benchmarks []string, scale float64, seed int64, cellParallel, l2Slices int, emit func(string, string, any) error) error {
	benches := benchmarks
	if len(benches) == 0 {
		benches = gputlb.WorkloadNames()
	}
	if len(benches) < 2 {
		return fmt.Errorf("-fig multi needs at least 2 benchmarks, got %d", len(benches))
	}
	pairs := gputlb.MultiPairs(benches)
	configs := jobs.MultiConfigNames()

	var cells []jobs.CellSpec
	for _, b := range benches {
		cells = append(cells, jobs.CellSpec{Bench: b, Config: "baseline", Scale: scale, Seed: seed, CellParallel: cellParallel, L2Slices: l2Slices})
	}
	for _, p := range pairs {
		for _, cfg := range configs {
			cells = append(cells, jobs.CellSpec{Tenants: p[:], Config: cfg, Scale: scale, Seed: seed, CellParallel: cellParallel, L2Slices: l2Slices})
		}
	}
	id, err := c.Submit(jobs.JobSpec{Name: "evaluate-multi", Cells: cells})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "evaluate: submitted evaluate-multi as %s; polling...\n", id)
	st, err := c.Wait(context.Background(), id, 0)
	if err != nil {
		return err
	}
	if st.State != jobs.StateDone {
		return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
	}
	res, err := c.Result(id)
	if err != nil {
		return err
	}
	if len(res.Cells) != len(cells) {
		return fmt.Errorf("job %s returned %d cells, want %d", id, len(res.Cells), len(cells))
	}

	soloIPC := make(map[string]float64, len(benches))
	for i, b := range benches {
		cell := res.Cells[i]
		if cell.Cycles > 0 {
			soloIPC[b] = float64(cell.InstsIssued) / float64(cell.Cycles)
		}
	}
	rows := make([]gputlb.MultiRow, 0, len(pairs)*len(configs))
	i := len(benches)
	for _, p := range pairs {
		for _, cfg := range configs {
			cell := res.Cells[i]
			i++
			mode, assign, ok := jobs.ParseMultiConfig(cfg)
			if !ok {
				return fmt.Errorf("internal error: %q is not a multi config", cfg)
			}
			solo := [2]float64{soloIPC[p[0]], soloIPC[p[1]]}
			rows = append(rows, gputlb.MultiRow{
				Benches:         p,
				TLBMode:         mode.String(),
				SMPolicy:        assign.String(),
				Tenants:         cell.Tenants,
				SoloIPC:         solo,
				WeightedSpeedup: gputlb.WeightedSpeedup(cell.Tenants, solo[:]),
			})
		}
	}
	return emit("multi", gputlb.RenderMulti(rows), rows)
}

// mechAllocFor returns the cell-level alloc override paired with a
// mechanism — the same pairing experiments.MechConfig applies in-process.
func mechAllocFor(mech string) string {
	if mech == "largereach" {
		return "contig"
	}
	return ""
}

// runMechViaDaemon submits the translation-mechanism study as one explicit
// cell list — a solo "baseline" cell per (benchmark, mechanism), then every
// pair x mechanism cell on the fully shared L2 TLB at the spatial SM split
// (MechMulti's fixed point) — and reconstructs the same MechRow/MechMultiRow
// rows an in-process run would render.
func runMechViaDaemon(c *jobs.Client, benchmarks []string, scale float64, seed int64, cellParallel, l2Slices int, emit func(string, string, any) error) error {
	benches := benchmarks
	if len(benches) == 0 {
		benches = gputlb.WorkloadNames()
	}
	mechs := gputlb.MechNames()

	var cells []jobs.CellSpec
	for _, b := range benches {
		for _, m := range mechs {
			cells = append(cells, jobs.CellSpec{
				Bench: b, Config: "baseline", Mech: m, Alloc: mechAllocFor(m),
				Scale: scale, Seed: seed, CellParallel: cellParallel, L2Slices: l2Slices,
			})
		}
	}
	var pairs [][2]string
	if len(benches) >= 2 {
		pairs = gputlb.MultiPairs(benches)
		for _, p := range pairs {
			for _, m := range mechs {
				cells = append(cells, jobs.CellSpec{
					Tenants: p[:], Config: "multi-shared-spatial", Mech: m, Alloc: mechAllocFor(m),
					Scale: scale, Seed: seed, CellParallel: cellParallel, L2Slices: l2Slices,
				})
			}
		}
	}
	id, err := c.Submit(jobs.JobSpec{Name: "evaluate-mech", Cells: cells})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "evaluate: submitted evaluate-mech as %s; polling...\n", id)
	st, err := c.Wait(context.Background(), id, 0)
	if err != nil {
		return err
	}
	if st.State != jobs.StateDone {
		return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
	}
	res, err := c.Result(id)
	if err != nil {
		return err
	}
	if len(res.Cells) != len(cells) {
		return fmt.Errorf("job %s returned %d cells, want %d", id, len(res.Cells), len(cells))
	}

	rows := make([]gputlb.MechRow, 0, len(benches)*len(mechs))
	soloIPC := map[string]float64{}
	for i, b := range benches {
		base := res.Cells[i*len(mechs)] // mechs[0] is "base"
		for j, m := range mechs {
			cell := res.Cells[i*len(mechs)+j]
			norm := 0.0
			if base.Cycles > 0 {
				norm = float64(cell.Cycles) / float64(base.Cycles)
			}
			if cell.Cycles > 0 {
				soloIPC[b+"/"+m] = float64(cell.InstsIssued) / float64(cell.Cycles)
			}
			rows = append(rows, gputlb.MechRow{
				Bench: b, Mech: m, NormTime: norm,
				L1Hit: cell.L1TLBHitRate, L2Hit: cell.L2TLBHitRate,
				Cycles: cell.Cycles,
			})
		}
	}
	if err := emit("mech", gputlb.RenderMechEval(rows), rows); err != nil {
		return err
	}
	if len(pairs) == 0 {
		return nil
	}
	mrows := make([]gputlb.MechMultiRow, 0, len(pairs)*len(mechs))
	i := len(benches) * len(mechs)
	for _, p := range pairs {
		for _, m := range mechs {
			cell := res.Cells[i]
			i++
			solo := [2]float64{soloIPC[p[0]+"/"+m], soloIPC[p[1]+"/"+m]}
			mrows = append(mrows, gputlb.MechMultiRow{
				Benches: p, Mech: m,
				Tenants:         cell.Tenants,
				SoloIPC:         solo,
				WeightedSpeedup: gputlb.WeightedSpeedup(cell.Tenants, solo[:]),
			})
		}
	}
	return emit("mech-multi", gputlb.RenderMechMulti(mrows), mrows)
}

// churnConfigs are the daemon cell configs of the churn grid: the full L2
// TLB tenancy axis at the spatial SM split, in grid order.
func churnConfigs() []string {
	var out []string
	for _, cfg := range jobs.MultiConfigNames() {
		if strings.HasSuffix(cfg, "-spatial") {
			out = append(out, cfg)
		}
	}
	return out
}

// runChurnViaDaemon submits the tenant-churn grid as one explicit cell list —
// a solo "baseline" cell per benchmark, then every pair x tenancy-mode cell
// with the grid's fixed arrival pattern — and reconstructs the same ChurnRow
// rows an in-process run would render.
func runChurnViaDaemon(c *jobs.Client, benchmarks []string, scale float64, seed int64, cellParallel, l2Slices int, objective string, emit func(string, string, any) error) error {
	benches := benchmarks
	if len(benches) == 0 {
		benches = gputlb.WorkloadNames()
	}
	if len(benches) < 2 {
		return fmt.Errorf("-fig churn needs at least 2 benchmarks, got %d", len(benches))
	}
	pairs := gputlb.MultiPairs(benches)
	configs := churnConfigs()

	var cells []jobs.CellSpec
	for _, b := range benches {
		cells = append(cells, jobs.CellSpec{Bench: b, Config: "baseline", Scale: scale, Seed: seed, CellParallel: cellParallel, L2Slices: l2Slices})
	}
	for _, p := range pairs {
		for _, cfg := range configs {
			cells = append(cells, jobs.CellSpec{
				Tenants:      p[:],
				Config:       cfg,
				Scale:        scale,
				Seed:         seed,
				CellParallel: cellParallel,
				L2Slices:     l2Slices,
				QueueCap:     experiments.ChurnQueueCap,
				Arrivals: []jobs.ArrivalSpec{
					{Bench: p[0], At: experiments.ChurnFirstArrival},
					{Bench: p[1], At: experiments.ChurnSecondArrival},
				},
				Objective: objective,
			})
		}
	}
	id, err := c.Submit(jobs.JobSpec{Name: "evaluate-churn", Cells: cells})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "evaluate: submitted evaluate-churn as %s; polling...\n", id)
	st, err := c.Wait(context.Background(), id, 0)
	if err != nil {
		return err
	}
	if st.State != jobs.StateDone {
		return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
	}
	res, err := c.Result(id)
	if err != nil {
		return err
	}
	if len(res.Cells) != len(cells) {
		return fmt.Errorf("job %s returned %d cells, want %d", id, len(res.Cells), len(cells))
	}

	soloIPC := make(map[string]float64, len(benches))
	for i, b := range benches {
		cell := res.Cells[i]
		if cell.Cycles > 0 {
			soloIPC[b] = float64(cell.InstsIssued) / float64(cell.Cycles)
		}
	}
	rows := make([]gputlb.ChurnRow, 0, len(pairs)*len(configs))
	i := len(benches)
	for _, p := range pairs {
		for _, cfg := range configs {
			cell := res.Cells[i]
			i++
			mode, _, ok := jobs.ParseMultiConfig(cfg)
			if !ok {
				return fmt.Errorf("internal error: %q is not a multi config", cfg)
			}
			solo := make([]float64, len(cell.Tenants))
			shed := 0
			for j, tn := range cell.Tenants {
				solo[j] = soloIPC[tn.Name]
				if tn.Shed {
					shed++
				}
			}
			rows = append(rows, gputlb.ChurnRow{
				Benches:         p,
				TLBMode:         mode.String(),
				Tenants:         cell.Tenants,
				SoloIPC:         solo,
				WeightedSpeedup: gputlb.WeightedSpeedup(cell.Tenants, solo),
				Shed:            shed,
			})
		}
	}
	return emit("churn", gputlb.RenderChurn(rows), rows)
}
