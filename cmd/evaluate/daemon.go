package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"gputlb"
	"gputlb/internal/jobs"
)

// runViaDaemon submits the requested figure's grid to a gputlbd and
// reconstructs the figure rows from the returned cell results. The cells
// are deterministic, so the daemon path renders exactly what an
// in-process run would.
func runViaDaemon(baseURL, fig string, benchmarks []string, scale float64, seed int64, jsonOut bool) error {
	c := &jobs.Client{BaseURL: baseURL}
	want := func(name string) bool { return fig == "all" || fig == name }
	emit := func(name, table string, rows any) error {
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(map[string]any{name: rows})
		}
		fmt.Println(table)
		return nil
	}

	// submit runs one grid remotely and returns the cell results grouped
	// per benchmark (configs-per-benchmark stride, matching Normalize's
	// benchmark-major expansion).
	submit := func(name string, configs []string) ([][]jobs.CellResult, error) {
		id, err := c.Submit(jobs.JobSpec{
			Name:       name,
			Benchmarks: benchmarks,
			Configs:    configs,
			Scale:      scale,
			Seed:       seed,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "evaluate: submitted %s as %s; polling...\n", name, id)
		st, err := c.Wait(context.Background(), id, 0)
		if err != nil {
			return nil, err
		}
		if st.State != jobs.StateDone {
			return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		res, err := c.Result(id)
		if err != nil {
			return nil, err
		}
		stride := len(configs)
		grouped := make([][]jobs.CellResult, 0, len(res.Cells)/stride)
		for i := 0; i+stride <= len(res.Cells); i += stride {
			grouped = append(grouped, res.Cells[i:i+stride])
		}
		return grouped, nil
	}

	supported := map[string]bool{"all": true, "10": true, "11": true, "12": true, "hugepage": true}
	if !supported[fig] {
		return fmt.Errorf("-fig %s is analysis-local; only 10, 11, 12, hugepage (or all) run via -daemon", fig)
	}

	if want("10") || want("11") {
		grouped, err := submit("evaluate-fig10-11", []string{"baseline", "sched", "sched+part", "sched+part+share"})
		if err != nil {
			return err
		}
		rows := make([]gputlb.EvalRow, len(grouped))
		for i, g := range grouped {
			rows[i] = gputlb.EvalRow{
				Bench:       g[0].Bench,
				HitBase:     g[0].L1TLBHitRate,
				HitSched:    g[1].L1TLBHitRate,
				HitPart:     g[2].L1TLBHitRate,
				HitShare:    g[3].L1TLBHitRate,
				CyclesBase:  g[0].Cycles,
				CyclesSched: g[1].Cycles,
				CyclesPart:  g[2].Cycles,
				CyclesShare: g[3].Cycles,
			}
		}
		if want("10") {
			if err := emit("fig10", gputlb.RenderFig10(rows), rows); err != nil {
				return err
			}
		}
		if want("11") {
			if err := emit("fig11", gputlb.RenderFig11(rows), rows); err != nil {
				return err
			}
		}
	}
	if want("12") {
		grouped, err := submit("evaluate-fig12", []string{"compression", "ours+compression"})
		if err != nil {
			return err
		}
		rows := make([]gputlb.Fig12Row, len(grouped))
		for i, g := range grouped {
			rows[i] = gputlb.Fig12Row{
				Bench:           g[0].Bench,
				Speedup:         float64(g[0].Cycles) / float64(g[1].Cycles),
				HitCompress:     g[0].L1TLBHitRate,
				HitOursCompress: g[1].L1TLBHitRate,
			}
		}
		if err := emit("fig12", gputlb.RenderFig12(rows), rows); err != nil {
			return err
		}
	}
	if want("hugepage") {
		grouped, err := submit("evaluate-hugepage", []string{"baseline-4K", "baseline-2M", "ours-2M"})
		if err != nil {
			return err
		}
		rows := make([]gputlb.HugePageRow, len(grouped))
		for i, g := range grouped {
			rows[i] = gputlb.HugePageRow{
				Bench:         g[0].Bench,
				Hit4K:         g[0].L1TLBHitRate,
				Hit2M:         g[1].L1TLBHitRate,
				SpeedupOurs2M: float64(g[1].Cycles) / float64(g[2].Cycles),
			}
		}
		if err := emit("hugepage", gputlb.RenderHugePages(rows), rows); err != nil {
			return err
		}
	}
	return nil
}
