// Command report regenerates the complete experimental study — every table
// and figure plus the balance and warp-reuse studies — as one document, the
// raw material of EXPERIMENTS.md. Diff its output against EXPERIMENTS.md's
// code blocks to audit the recorded results.
//
//	report                # full study to stdout (takes a few minutes)
//	report -o report.txt  # write to a file
//	report -scale 0.5     # faster, reduced-scale run
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"gputlb"
	"gputlb/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")

	var (
		out      = flag.String("o", "", "output file (default stdout)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation cells (results are identical at any value)")
		outputs  cliutil.OutputFlags
	)
	outputs.Register(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := outputs.Start()
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	opt := gputlb.DefaultExperimentOptions()
	opt.Params.Scale = *scale
	opt.Params.Seed = *seed
	opt.Parallelism = *parallel
	opt.StatsDump = outputs.NewStatsDump()
	opt.Tracer = outputs.NewTracer()

	section := func(s string) {
		if _, err := fmt.Fprintln(w, s); err != nil {
			log.Fatal(err)
		}
	}

	section("gputlb experimental study")
	section("")
	section(gputlb.Table3())

	t2, err := gputlb.Table2(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderTable2(t2))

	f2, err := gputlb.Fig2(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderFig2(f2))

	f3, err := gputlb.Fig3(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderBins("Figure 3 — inter-TB translation reuse (fraction of TB pairs per bin)", f3))

	f4, err := gputlb.Fig4(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderBins("Figure 4 — intra-TB translation reuse (fraction of TBs per bin)", f4))

	f5, err := gputlb.Fig5(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderCDF("Figure 5 — intra-TB reuse distance CDF, TBs running concurrently", f5))

	f6, err := gputlb.Fig6(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderCDF("Figure 6 — intra-TB reuse distance CDF, one TB at a time", f6))

	ev, err := gputlb.Eval(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderFig10(ev))
	section(gputlb.RenderFig11(ev))

	f12, err := gputlb.Fig12(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderFig12(f12))

	hp, err := gputlb.HugePages(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderHugePages(hp))

	bal, err := gputlb.SMBalance(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderSMBalance(bal))

	wr, err := gputlb.WarpReuse(opt)
	if err != nil {
		log.Fatal(err)
	}
	section(gputlb.RenderBins("Future work — warp-granularity intra-warp translation reuse", wr))

	if err := outputs.Export(opt.StatsDump, opt.Tracer); err != nil {
		log.Fatal(err)
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}
