// Command gputlbd is the sweep daemon: an HTTP service that accepts
// experiment-grid jobs (benchmark × configuration cells as JSON), runs
// them on the bounded simulation pool, and journals every completed cell
// so a killed daemon resumes with only the unfinished cells re-run.
//
// Endpoints: POST /jobs, GET /jobs, GET /jobs/{id}, GET /jobs/{id}/result,
// GET /healthz, GET /metrics. A full queue sheds submissions with 429.
// SIGINT/SIGTERM drain gracefully: in-flight cells finish and journal,
// the current job checkpoints, and the process exits; restart with the
// same -journal-dir to resume.
//
// Examples:
//
//	gputlbd -journal-dir /var/lib/gputlbd
//	curl -s localhost:8372/jobs -d '{"name":"fig11","configs":["baseline","sched","sched+part","sched+part+share"]}'
//	curl -s localhost:8372/jobs/job-0001
//	curl -s localhost:8372/jobs/job-0001/result
//	curl -s localhost:8372/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"gputlb/internal/jobs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gputlbd: ")

	var (
		addr         = flag.String("addr", ":8372", "listen address")
		journalDir   = flag.String("journal-dir", "gputlbd-journal", "directory for job journals and results (resume state)")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation cells within a job")
		queue        = flag.Int("queue", 16, "bounded job queue capacity; beyond it submissions get 429")
		retries      = flag.Int("retries", 3, "max attempts per cell before it fails permanently")
		retryBackoff = flag.Duration("retry-backoff", 100*time.Millisecond, "delay before a cell's first retry (doubles per attempt)")
		cellTimeout  = flag.Duration("cell-timeout", 0, "per-cell attempt timeout (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "max wait for in-flight cells to checkpoint on shutdown")
		injectEvery  = flag.Int("inject-fail-every", 0, "resilience drill: fail every Nth cell attempt once (0 = off; never use in production)")
	)
	flag.Parse()

	opt := jobs.Options{
		Dir:           *journalDir,
		QueueCapacity: *queue,
		Parallelism:   *parallel,
		MaxAttempts:   *retries,
		RetryBackoff:  *retryBackoff,
		CellTimeout:   *cellTimeout,
	}
	if *injectEvery > 0 {
		var n atomic.Int64
		every := int64(*injectEvery)
		opt.InjectCellError = func(c jobs.CellSpec, attempt int) error {
			if attempt == 1 && n.Add(1)%every == 0 {
				return fmt.Errorf("injected failure (drill, -inject-fail-every=%d)", every)
			}
			return nil
		}
		log.Printf("fault injection armed: every %d cells fail their first attempt", every)
	}

	m, err := jobs.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range m.Jobs() {
		if st.State == jobs.StateCheckpointed {
			log.Printf("resuming %s (%d/%d cells checkpointed)", st.ID, st.CellsDone, st.Cells)
		}
	}
	m.Start()

	srv := &http.Server{Addr: *addr, Handler: m.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (journal dir %s, %d-deep queue, %d workers)",
		*addr, *journalDir, *queue, *parallel)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (in-flight cells checkpoint, then exit)", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := m.Drain(ctx); err != nil {
		log.Printf("drain: %v (journal still holds every completed cell)", err)
		os.Exit(1)
	}
	log.Print("drained cleanly; restart with the same -journal-dir to resume")
}
