// Command gputlbd is the sweep daemon. It runs in one of three modes:
//
//   - default: the single-process daemon — an HTTP service that accepts
//     experiment-grid jobs (benchmark × configuration cells as JSON),
//     runs them on the bounded simulation pool, and journals every
//     completed cell so a killed daemon resumes with only the
//     unfinished cells re-run.
//   - -coordinator: the fabric coordinator — serves the exact same
//     /jobs API but executes nothing locally; cells are dispatched in
//     batches to joined workers, with work-stealing from stragglers, a
//     content-addressed result cache, and re-dispatch of unacknowledged
//     cells when a worker dies. Results are byte-identical to the
//     single-process daemon's.
//   - -worker -join URL: a fabric worker — registers with a
//     coordinator, heartbeats, accepts POST /cells batches, runs them
//     through the same cell runner as the single-process daemon, and
//     streams outcomes back through a size + max-wait batcher.
//
// Endpoints (default and -coordinator): POST /jobs, GET /jobs,
// GET /jobs/{id}, GET /jobs/{id}/result, GET /healthz, GET /metrics;
// the coordinator adds POST /workers, POST /workers/{id}/heartbeat,
// GET /workers, POST /results. Workers serve POST /cells, GET /healthz,
// GET /metrics. A full queue sheds submissions with 429.
// SIGINT/SIGTERM drain gracefully; restart with the same -journal-dir
// to resume. See OPERATIONS.md for the full API reference and runbook.
//
// Examples:
//
//	gputlbd -journal-dir /var/lib/gputlbd
//	gputlbd -coordinator -addr :8372 -journal-dir /var/lib/gputlbd
//	gputlbd -worker -join http://coord:8372 -addr :8380
//	curl -s localhost:8372/jobs -d '{"name":"fig11","configs":["baseline","sched","sched+part","sched+part+share"]}'
//	curl -s localhost:8372/jobs/job-0001/result
//	curl -s localhost:8372/workers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"gputlb/internal/fabric"
	"gputlb/internal/jobs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gputlbd: ")

	var (
		addr         = flag.String("addr", ":8372", "listen address")
		journalDir   = flag.String("journal-dir", "gputlbd-journal", "directory for job journals and results (resume state)")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation cells within a job (default and -worker modes)")
		queue        = flag.Int("queue", 16, "bounded job queue capacity; beyond it submissions get 429")
		retries      = flag.Int("retries", 3, "max attempts per cell before it fails permanently")
		retryBackoff = flag.Duration("retry-backoff", 100*time.Millisecond, "delay before a cell's first retry (doubles per attempt)")
		cellTimeout  = flag.Duration("cell-timeout", 0, "per-cell attempt timeout (0 = none; default mode only)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "max wait for in-flight cells to checkpoint on shutdown")
		injectEvery  = flag.Int("inject-fail-every", 0, "resilience drill: fail every Nth cell attempt once (0 = off; never use in production)")

		coordinator = flag.Bool("coordinator", false, "run as the fabric coordinator: dispatch cells to joined workers instead of simulating locally")
		workerMode  = flag.Bool("worker", false, "run as a fabric worker: execute cell batches for the coordinator at -join")
		join        = flag.String("join", "", "coordinator base URL to register with (-worker mode, required)")
		advertise   = flag.String("advertise", "", "this worker's base URL as the coordinator reaches it (-worker mode; default http://127.0.0.1:<addr port>)")

		batchSize    = flag.Int("batch-size", 4, "cells per dispatch batch (-coordinator mode)")
		leaseTimeout = flag.Duration("lease-timeout", 10*time.Second, "silence after which a worker is dropped and its cells re-dispatched (-coordinator mode)")
		stealAfter   = flag.Duration("steal-after", 2*time.Second, "lease age past which idle workers steal a copy of a straggler's cell (-coordinator mode)")
		cacheCap     = flag.Int("cache-capacity", 4096, "content-addressed result cache capacity in cells (-coordinator mode)")
		flushSize    = flag.Int("flush-size", 32, "result batch size that forces a flush to the coordinator (-worker mode)")
		flushWait    = flag.Duration("flush-wait", 50*time.Millisecond, "max buffering delay before a result flush (-worker mode)")
		heartbeat    = flag.Duration("heartbeat", time.Second, "worker heartbeat period; keep well under the coordinator's -lease-timeout (-worker mode)")
	)
	flag.Parse()

	if *coordinator && *workerMode {
		log.Fatal("-coordinator and -worker are mutually exclusive")
	}

	injectHook := func() func(jobs.CellSpec, int) error {
		if *injectEvery <= 0 {
			return nil
		}
		var n atomic.Int64
		every := int64(*injectEvery)
		log.Printf("fault injection armed: every %d cells fail their first attempt", every)
		return func(c jobs.CellSpec, attempt int) error {
			if attempt == 1 && n.Add(1)%every == 0 {
				return fmt.Errorf("injected failure (drill, -inject-fail-every=%d)", every)
			}
			return nil
		}
	}

	switch {
	case *coordinator:
		c, err := fabric.NewCoordinator(fabric.CoordinatorOptions{
			Dir:           *journalDir,
			QueueCapacity: *queue,
			BatchSize:     *batchSize,
			LeaseTimeout:  *leaseTimeout,
			StealAfter:    *stealAfter,
			CacheCapacity: *cacheCap,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range c.Jobs() {
			if st.State == jobs.StateCheckpointed {
				log.Printf("resuming %s (%d/%d cells checkpointed)", st.ID, st.CellsDone, st.Cells)
			}
		}
		c.Start()
		log.Printf("coordinator on %s (journal dir %s, batch %d, lease timeout %v, steal after %v)",
			*addr, *journalDir, *batchSize, *leaseTimeout, *stealAfter)
		serveUntilSignal(*addr, c.Handler(), *drainTimeout, func(ctx context.Context) error {
			return c.Drain(ctx)
		})

	case *workerMode:
		if *join == "" {
			log.Fatal("-worker requires -join <coordinator URL>")
		}
		adv := *advertise
		if adv == "" {
			_, port, err := net.SplitHostPort(*addr)
			if err != nil {
				log.Fatalf("-advertise required: cannot derive it from -addr %q: %v", *addr, err)
			}
			adv = "http://127.0.0.1:" + port
		}
		w := fabric.NewWorker(fabric.WorkerOptions{
			CoordinatorURL:  *join,
			AdvertiseURL:    adv,
			Parallelism:     *parallel,
			MaxAttempts:     *retries,
			RetryBackoff:    *retryBackoff,
			FlushSize:       *flushSize,
			FlushWait:       *flushWait,
			HeartbeatEvery:  *heartbeat,
			InjectCellError: injectHook(),
		})
		if err := w.Start(); err != nil {
			log.Fatal(err)
		}
		log.Printf("worker %s on %s, joined %s as %s (%d runners)", adv, *addr, *join, w.ID(), *parallel)
		serveUntilSignal(*addr, w.Handler(), *drainTimeout, func(context.Context) error {
			w.Close() // finishes in-flight cells and flushes buffered results
			return nil
		})

	default:
		opt := jobs.Options{
			Dir:             *journalDir,
			QueueCapacity:   *queue,
			Parallelism:     *parallel,
			MaxAttempts:     *retries,
			RetryBackoff:    *retryBackoff,
			CellTimeout:     *cellTimeout,
			InjectCellError: injectHook(),
		}
		m, err := jobs.New(opt)
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range m.Jobs() {
			if st.State == jobs.StateCheckpointed {
				log.Printf("resuming %s (%d/%d cells checkpointed)", st.ID, st.CellsDone, st.Cells)
			}
		}
		m.Start()
		log.Printf("serving on %s (journal dir %s, %d-deep queue, %d workers)",
			*addr, *journalDir, *queue, *parallel)
		serveUntilSignal(*addr, m.Handler(), *drainTimeout, func(ctx context.Context) error {
			return m.Drain(ctx)
		})
	}
}

// serveUntilSignal runs the HTTP server until SIGINT/SIGTERM, then shuts
// the listener down and drains the mode's engine within drainTimeout.
func serveUntilSignal(addr string, h http.Handler, drainTimeout time.Duration, drain func(context.Context) error) {
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (in-flight cells checkpoint, then exit)", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := drain(ctx); err != nil {
		log.Printf("drain: %v (journal still holds every completed cell)", err)
		os.Exit(1)
	}
	log.Print("drained cleanly; restart with the same -journal-dir to resume")
}
