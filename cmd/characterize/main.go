// Command characterize regenerates the paper's motivation and
// characterization data: Table II (benchmarks), Figure 2 (baseline hit
// rates at two L1 TLB capacities), Figures 3 and 4 (inter-/intra-TB
// translation reuse), and Figures 5 and 6 (reuse-distance CDFs with and
// without inter-TB interference).
//
// Examples:
//
//	characterize              # everything
//	characterize -fig 4       # intra-TB reuse only
//	characterize -bench bfs,mvt -fig 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"gputlb"
	"gputlb/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	var (
		fig        = flag.String("fig", "all", "what to produce: table2 | 2 | 3 | 4 | 5 | 6 | all")
		bench      = flag.String("bench", "", "comma-separated benchmark subset (default: all)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		seed       = flag.Int64("seed", 1, "workload generation seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation cells (results are identical at any value)")
		jsonOut    = flag.Bool("json", false, "emit the row structs as JSON instead of tables")
		statsOut   = flag.String("stats-out", "", "write every simulated cell's full stats tree to this file (.csv for CSV, else JSON; only Figure 2 simulates)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of all simulated cells (open in chrome://tracing or Perfetto)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	stopProfiles, err := cliutil.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	opt := gputlb.DefaultExperimentOptions()
	opt.Params.Scale = *scale
	opt.Params.Seed = *seed
	opt.Parallelism = *parallel
	if *bench != "" {
		opt.Benchmarks = strings.Split(*bench, ",")
	}
	if *statsOut != "" {
		opt.StatsDump = &gputlb.StatsDump{}
	}
	if *traceOut != "" {
		opt.Tracer = gputlb.NewTracer(0)
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	emit := func(name, table string, rows any) {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{name: rows}); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Println(table)
	}

	if want("table2") {
		rows, err := gputlb.Table2(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("table2", gputlb.RenderTable2(rows), rows)
	}
	if want("2") {
		rows, err := gputlb.Fig2(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig2", gputlb.RenderFig2(rows), rows)
	}
	if want("3") {
		rows, err := gputlb.Fig3(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig3", gputlb.RenderBins("Figure 3 — inter-TB translation reuse (fraction of TB pairs per bin)", rows), rows)
	}
	if want("4") {
		rows, err := gputlb.Fig4(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig4", gputlb.RenderBins("Figure 4 — intra-TB translation reuse (fraction of TBs per bin)", rows), rows)
	}
	if want("5") {
		rows, err := gputlb.Fig5(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig5", gputlb.RenderCDF("Figure 5 — intra-TB reuse distance CDF, TBs running concurrently", rows), rows)
	}
	if want("6") {
		rows, err := gputlb.Fig6(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig6", gputlb.RenderCDF("Figure 6 — intra-TB reuse distance CDF, one TB at a time", rows), rows)
	}

	if *statsOut != "" {
		if err := cliutil.ExportStatsDump(*statsOut, opt.StatsDump); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		if err := cliutil.ExportTrace(*traceOut, opt.Tracer); err != nil {
			log.Fatal(err)
		}
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}
