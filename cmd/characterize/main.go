// Command characterize regenerates the paper's motivation and
// characterization data: Table II (benchmarks), Figure 2 (baseline hit
// rates at two L1 TLB capacities), Figures 3 and 4 (inter-/intra-TB
// translation reuse), and Figures 5 and 6 (reuse-distance CDFs with and
// without inter-TB interference).
//
// Examples:
//
//	characterize              # everything
//	characterize -fig 4       # intra-TB reuse only
//	characterize -bench bfs,mvt -fig 5
//	characterize -daemon http://localhost:8372 -fig 2   # simulate on a gputlbd
//
// The -daemon URL may equally point at a fabric coordinator (gputlbd
// -coordinator): the /jobs API is identical and the distributed run's
// result artifact is byte-identical to a single daemon's.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"gputlb"
	"gputlb/internal/cliutil"
	"gputlb/internal/jobs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	var (
		fig      = flag.String("fig", "all", "what to produce: table2 | 2 | 3 | 4 | 5 | 6 | all")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation cells (results are identical at any value)")
		cellPar  = flag.Int("cell-parallel", 1, "intra-cell engine for the simulating figures: 1 = serial (golden-identical), N>=2 = sharded epoch-barrier engine with up to N workers per cell")
		l2Slices = flag.Int("l2-slices", 4, "address slices for the sharded engine's barrier (bit-identical at any worker count for fixed K); ignored when -cell-parallel <= 1")
		jsonOut  = flag.Bool("json", false, "emit the row structs as JSON instead of tables")
		daemon   = flag.String("daemon", "", "submit the Figure 2 sweep to a gputlbd (or fabric coordinator — same API) at this URL instead of simulating in-process")
		out      cliutil.OutputFlags
	)
	out.Register(flag.CommandLine)
	flag.Parse()

	var benchmarks []string
	if *bench != "" {
		benchmarks = strings.Split(*bench, ",")
	}

	emit := func(name, table string, rows any) {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{name: rows}); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Println(table)
	}

	if *daemon != "" {
		// Only Figure 2 simulates; the reuse characterizations are trace
		// analyses that stay local.
		if *fig != "2" {
			log.Fatalf("-daemon runs the simulating figure only; use -fig 2 (got -fig %s)", *fig)
		}
		rows, err := fig2ViaDaemon(*daemon, benchmarks, *scale, *seed, *cellPar, *l2Slices)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig2", gputlb.RenderFig2(rows), rows)
		return
	}

	stopProfiles, err := out.Start()
	if err != nil {
		log.Fatal(err)
	}

	opt := gputlb.DefaultExperimentOptions()
	opt.Params.Scale = *scale
	opt.Params.Seed = *seed
	opt.Parallelism = *parallel
	opt.CellParallel = *cellPar
	opt.L2Slices = *l2Slices
	opt.Benchmarks = benchmarks
	opt.StatsDump = out.NewStatsDump()
	opt.Tracer = out.NewTracer()

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("table2") {
		rows, err := gputlb.Table2(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("table2", gputlb.RenderTable2(rows), rows)
	}
	if want("2") {
		rows, err := gputlb.Fig2(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig2", gputlb.RenderFig2(rows), rows)
	}
	if want("3") {
		rows, err := gputlb.Fig3(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig3", gputlb.RenderBins("Figure 3 — inter-TB translation reuse (fraction of TB pairs per bin)", rows), rows)
	}
	if want("4") {
		rows, err := gputlb.Fig4(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig4", gputlb.RenderBins("Figure 4 — intra-TB translation reuse (fraction of TBs per bin)", rows), rows)
	}
	if want("5") {
		rows, err := gputlb.Fig5(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig5", gputlb.RenderCDF("Figure 5 — intra-TB reuse distance CDF, TBs running concurrently", rows), rows)
	}
	if want("6") {
		rows, err := gputlb.Fig6(opt)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig6", gputlb.RenderCDF("Figure 6 — intra-TB reuse distance CDF, one TB at a time", rows), rows)
	}

	if err := out.Export(opt.StatsDump, opt.Tracer); err != nil {
		log.Fatal(err)
	}
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}

// fig2ViaDaemon runs the Figure 2 capacity sweep on a gputlbd and
// reconstructs the rows from the job's cell results.
func fig2ViaDaemon(baseURL string, benchmarks []string, scale float64, seed int64, cellParallel, l2Slices int) ([]gputlb.Fig2Row, error) {
	c := &jobs.Client{BaseURL: baseURL}
	if cellParallel < 2 {
		l2Slices = 0 // slicing is a property of the sharded barrier only
	}
	id, err := c.Submit(jobs.JobSpec{
		Name:         "characterize-fig2",
		Benchmarks:   benchmarks,
		Configs:      []string{"64-entry", "256-entry"},
		Scale:        scale,
		Seed:         seed,
		CellParallel: cellParallel,
		L2Slices:     l2Slices,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "characterize: submitted as %s; polling...\n", id)
	st, err := c.Wait(context.Background(), id, 0)
	if err != nil {
		return nil, err
	}
	if st.State != jobs.StateDone {
		return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
	}
	res, err := c.Result(id)
	if err != nil {
		return nil, err
	}
	var rows []gputlb.Fig2Row
	for i := 0; i+2 <= len(res.Cells); i += 2 {
		rows = append(rows, gputlb.Fig2Row{
			Bench:  res.Cells[i].Bench,
			Hit64:  res.Cells[i].L1TLBHitRate,
			Hit256: res.Cells[i+1].L1TLBHitRate,
		})
	}
	return rows, nil
}
